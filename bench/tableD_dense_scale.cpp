// tableD_dense_scale — the dense experiment lane: every paper strategy,
// multi-trial, under churn, at scale.
//
// This is what the nightly 1M smoke test grows into once the tick loop
// is parallel (ROADMAP: "dense experiments instead of a smoke test").
// Each (strategy, trial) cell builds a fresh world and runs a fixed
// churn horizon, recording load-balance outcomes at the horizon rather
// than runtime-to-completion — at nightly scale the interesting question
// is "how balanced is the ring while work is flowing", and a bounded
// horizon keeps the lane's wall time predictable across strategies.
//
// Env knobs: DHTLB_DENSE_NODES (default 10k; nightly sets 1M),
// DHTLB_DENSE_TICKS (default 100), DHTLB_DENSE_PROVISIONING
// ("streamed", the default, or "preallocated"), DHTLB_TRIALS,
// DHTLB_SEED, DHTLB_THREADS (nightly sets 0 = all cores; outputs are
// thread-count independent so the committed baseline still gates
// values bit-for-bit).
//
// Provisioning: preallocated mode materializes 2*nodes*horizon keys at
// tick 0 — ~10 GiB at 1M nodes, which is what kept the nightly grid at
// 100k (EXPERIMENTS.md "Memory trajectory").  Streamed mode (the
// default) delivers the same job through a sim::TaskStream at an
// arrival rate matched to capacity, so resident tasks track the
// backlog and the full 1M all-strategy grid fits a standard runner.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/telemetry.hpp"
#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "stats/descriptive.hpp"
#include "stats/load_metrics.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

}  // namespace

int main() {
  bench::Telemetry telemetry("tableD_dense_scale");
  const std::uint64_t base_seed = support::env_seed();
  const std::size_t nodes = static_cast<std::size_t>(
      support::env_u64("DHTLB_DENSE_NODES", 10'000));
  const std::uint64_t horizon = support::env_u64("DHTLB_DENSE_TICKS", 100);
  const std::uint64_t trials = support::env_trials(3);
  const std::size_t threads = support::env_threads();
  const std::string provisioning =
      support::env_string("DHTLB_DENSE_PROVISIONING", "streamed");
  const bool streamed = provisioning == "streamed";
  DHTLB_CHECK(streamed || provisioning == "preallocated",
              "DHTLB_DENSE_PROVISIONING must be 'streamed' or "
              "'preallocated', got '" << provisioning << "'");

  std::printf("=== tableD_dense_scale — all strategies under churn ===\n");
  std::printf("%zu nodes, %llu-tick horizon, %llu trial(s), seed %llu, "
              "%s provisioning\n\n",
              nodes, static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(base_seed),
              provisioning.c_str());

  support::TextTable table({"strategy", "done frac", "gini", "stddev",
                            "joins+leaves", "wall ms"});

  // "none" covers the churn-only baseline (every cell here churns);
  // everything else is the full paper + extension strategy set.
  std::vector<std::string_view> strategies;
  strategies.push_back("none");
  for (const auto name : lb::strategy_names()) {
    if (name != "none" && name != "churn") strategies.push_back(name);
  }
  for (const auto name : lb::extension_strategy_names()) {
    strategies.push_back(name);
  }

  for (const auto strategy : strategies) {
    const bench::WallTimer strategy_timer;
    stats::RunningStats done_frac;
    stats::RunningStats gini;
    stats::RunningStats stddev;
    std::uint64_t churn_events = 0;

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      sim::Params p;
      p.initial_nodes = nodes;
      // Twice the horizon's aggregate capacity: the ring is still under
      // load when we measure, so the balance metrics see live imbalance
      // rather than a drained ring.
      p.total_tasks = 2 * nodes * horizon;
      p.churn_rate = 0.02;
      p.max_ticks = horizon;
      if (streamed) {
        // Auto arrival window (= the ideal runtime): arrivals flow at
        // exactly the initial capacity, so the ring is under steady
        // per-tick load for the whole horizon while the resident
        // backlog stays bounded — that bound is what lets this lane
        // run at 1M nodes inside a CI runner's memory budget.
        p.provisioning = sim::TaskProvisioning::kStreamed;
        p.arrival_ticks = 0;
      }

      sim::Engine engine(p, support::mix_seed(base_seed, trial),
                         lb::make_strategy(strategy));
      engine.set_audit(false);
      engine.set_threads(threads);
      // Hold the horizon even if the task pool drains: the lane measures
      // the ring under sustained churn, not time-to-completion.
      engine.set_pre_tick_hook(
          [horizon](std::uint64_t tick) { return tick <= horizon; });
      const sim::RunResult result = engine.run();

      const sim::World& world = engine.world();
      const std::vector<std::uint64_t> loads = world.alive_workloads();
      stats::RunningStats spread;
      for (const std::uint64_t load : loads) {
        spread.add(static_cast<double>(load));
      }
      const double total = static_cast<double>(world.total_tasks());
      done_frac.add(
          total == 0.0
              ? 1.0
              : (total - static_cast<double>(world.remaining_tasks())) /
                    total);
      gini.add(stats::gini(loads));
      stddev.add(spread.stddev());
      churn_events += result.joins + result.leaves;
    }

    const double wall = strategy_timer.elapsed_ms();
    const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();
    const bool det = bench::Telemetry::deterministic();
    const std::string cell =
        "s=" + std::string(strategy) + "/n=" + std::to_string(nodes);
    telemetry.record(cell, "done_frac_mean", done_frac.mean(), wall, trials,
                     rss);
    telemetry.record(cell, "gini_mean", gini.mean(), 0.0, trials);
    telemetry.record(cell, "workload_stddev_mean", stddev.mean(), 0.0,
                     trials);
    telemetry.record(cell, "churn_events",
                     static_cast<double>(churn_events), 0.0, trials);
    telemetry.record(cell, "wall_ms", det ? 0.0 : wall, wall, trials, rss);

    table.add_row({std::string(strategy),
                   support::format_fixed(done_frac.mean(), 4),
                   support::format_fixed(gini.mean(), 4),
                   support::format_fixed(stddev.mean(), 2),
                   std::to_string(churn_events),
                   support::format_fixed(wall, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
