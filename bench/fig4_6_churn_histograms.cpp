// Reproduces Figures 4-6: workload-distribution histograms of two
// networks with identical starting configurations — one using 0.01
// induced churn, one using no strategy — captured at ticks 0, 5 and 35.
//
// Expected shape (paper): identical at tick 0; by tick 5 the churned
// network has fewer low-workload nodes; by tick 35 the difference is
// pronounced (far fewer idlers under churn).
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/histogram.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig4_6_churn_histograms", "Figures 4-6",
                         "churn 0.01 vs none at ticks 0/5/35", 1);

  const auto params = bench::paper_defaults(1000, 100'000);
  sim::Params churned = params;
  churned.churn_rate = 0.01;

  const auto seed = support::env_seed();
  const bench::WallTimer timer;
  const auto none = exp::run_with_snapshots(params, "none", seed, {0, 5, 35});
  const auto churn = exp::run_with_snapshots(churned, "churn", seed,
                                             {0, 5, 35});
  const double wall = timer.elapsed_ms();

  const char* fig_names[] = {"Figure 4 (tick 0 — initial)",
                             "Figure 5 (beginning of tick 5)",
                             "Figure 6 (tick 35)"};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& ln = none.snapshots[i].workloads;
    const auto& lc = churn.snapshots[i].workloads;
    std::printf("--- %s ---\n", fig_names[i]);
    std::printf("%s", viz::render_comparison(
                          stats::workload_histogram(ln, 12).bins(),
                          "no strategy",
                          stats::workload_histogram(lc, 12).bins(),
                          "churn 0.01")
                          .c_str());
    std::printf("idle fraction: none %.3f vs churn %.3f | gini: none %.3f "
                "vs churn %.3f\n\n",
                stats::idle_fraction(ln), stats::idle_fraction(lc),
                stats::gini(ln), stats::gini(lc));
    const std::string tick = "tick" + std::to_string(none.snapshots[i].tick);
    session.record(tick + "/none", "idle_fraction", stats::idle_fraction(ln),
                   0.0, 1);
    session.record(tick + "/churn", "idle_fraction", stats::idle_fraction(lc),
                   0.0, 1);
    session.record(tick + "/none", "gini", stats::gini(ln), 0.0, 1);
    session.record(tick + "/churn", "gini", stats::gini(lc), 0.0, 1);
  }
  session.record("run/none", "runtime_factor", none.runtime_factor, wall, 1);
  session.record("run/churn", "runtime_factor", churn.runtime_factor, 0.0, 1);
  std::printf("runtime: none %llu ticks (factor %.2f), churn %llu ticks "
              "(factor %.2f)\n",
              static_cast<unsigned long long>(none.ticks),
              none.runtime_factor,
              static_cast<unsigned long long>(churn.ticks),
              churn.runtime_factor);
  return 0;
}
