// Flash-crowd experiment for the §VII claim: "Each joining node is
// another member of the network that can fully participate in the
// computation, despite not being present at the beginning."
//
// A job starts on N nodes; at a chosen tick, a burst of K waiting nodes
// joins at once (a flash crowd — volunteers arriving after a launch,
// the Folding@Home 2020 story from §I).  Measured: how much of the
// remaining work the newcomers absorb and how much the makespan drops,
// with and without a Sybil strategy running alongside.
#include <cstdio>
#include <vector>

#include "lb/factory.hpp"
#include "repro_util.hpp"
#include "sim/engine.hpp"
#include "support/env.hpp"

namespace {

using namespace dhtlb;

struct FlashResult {
  std::uint64_t ticks = 0;
  double runtime_factor = 0.0;
  std::size_t joined = 0;
};

FlashResult run_flash(const char* strategy, std::size_t burst,
                      std::uint64_t burst_tick, std::uint64_t seed) {
  sim::Params p = bench::paper_defaults(500, 50'000);
  sim::Engine engine(p, seed, lb::make_strategy(strategy));
  FlashResult result;
  while (true) {
    if (engine.current_tick() == burst_tick) {
      for (std::size_t i = 0; i < burst; ++i) {
        if (engine.world().join_from_pool()) ++result.joined;
      }
    }
    if (!engine.step()) break;
  }
  result.ticks = engine.current_tick();
  // The factor keeps the ORIGINAL ideal (100 ticks): the interesting
  // quantity is speedup relative to the job as planned.
  result.runtime_factor =
      static_cast<double>(result.ticks) /
      static_cast<double>(engine.ideal_ticks());
  return result;
}

}  // namespace

int main() {
  bench::Session session("tableC_flash_crowd", "Flash crowd (SS VII / SS I)",
                         "late joiners absorbing an in-flight job", 5);
  const std::size_t trials = session.trials();

  support::TextTable table({"strategy", "burst", "at tick",
                            "runtime factor", "vs no burst"});
  for (const char* strategy : {"none", "random-injection"}) {
    double no_burst = 0.0;
    for (const auto& [burst, tick] :
         std::vector<std::pair<std::size_t, std::uint64_t>>{
             {0, 0}, {250, 10}, {250, 50}, {500, 10}}) {
      const bench::WallTimer timer;
      double factor = 0.0;
      for (std::size_t t = 0; t < trials; ++t) {
        factor += run_flash(strategy, burst, tick,
                            support::mix_seed(support::env_seed(), t))
                      .runtime_factor;
      }
      factor /= static_cast<double>(trials);
      if (burst == 0) no_burst = factor;
      session.record(std::string(strategy) + "/burst=" +
                         std::to_string(burst) + "@t" + std::to_string(tick),
                     "runtime_factor_mean", factor, timer.elapsed_ms());
      table.add_row({strategy, std::to_string(burst),
                     burst == 0 ? "-" : std::to_string(tick),
                     support::format_fixed(factor, 3),
                     burst == 0 ? "-"
                                : support::format_fixed(no_burst - factor,
                                                        3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide: newcomers help even with NO strategy (they land in\n"
      "random arcs and take over work — the churn mechanism); an early\n"
      "burst helps more than a late one; with random injection running,\n"
      "the crowd is folded in even faster.\n");
  return 0;
}
