// Reproduces the §VI-B Random Injection numbers quoted in the text:
//   * 1000 n / 1e5 t homogeneous: mean factor never above 1.7, best 1.36
//   * 1000 n / 1e6 t: 1.25 worst / 1.12 best; ~0.82 lower than the 1e5 row
//   * equal tasks-per-node ratios give similar factors, the smaller
//     network slightly faster (by ~0.086 in the paper's 100-tasks/node pair)
//   * heterogeneous networks improve but less; large ratios tolerate
//     heterogeneity better
#include <cstdio>

#include "repro_util.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableR_random_injection", "Table R (SS VI-B text)",
                         "random injection runtime factors", 10);
  const std::size_t trials = session.trials();

  support::TextTable table(
      {"network", "mode", "factor (ours)", "paper says"});

  auto cell = [&](std::size_t nodes, std::uint64_t tasks, bool het,
                  const char* label, const char* paper_note) {
    sim::Params p = bench::paper_defaults(nodes, tasks);
    p.heterogeneous = het;
    // The paper's heterogeneous degradation appears when nodes consume
    // strength tasks per tick (weak nodes steal work from strong ones
    // and then finish it slowly); use that mode for the het rows.
    if (het) p.work_measure = sim::WorkMeasure::kStrengthPerTick;
    const bench::WallTimer timer;
    const auto agg = exp::run_trials(p, "random-injection", trials,
                                     support::env_seed(), &session.pool());
    session.record(std::string(label) + (het ? "/het" : "/hom"),
                   "runtime_factor_mean", agg.runtime_factor.mean,
                   timer.elapsed_ms());
    table.add_row({label, het ? "heterogeneous" : "homogeneous",
                   support::format_fixed(agg.runtime_factor.mean, 3) + "  [" +
                       support::format_fixed(agg.runtime_factor.min, 2) +
                       ", " +
                       support::format_fixed(agg.runtime_factor.max, 2) + "]",
                   paper_note});
    return agg.runtime_factor.mean;
  };

  const double hom_1e5 =
      cell(1000, 100'000, false, "1000 n / 1e5 t", "never >1.7, best 1.36");
  const double hom_1e6 =
      cell(1000, 1'000'000, false, "1000 n / 1e6 t", "1.25 worst, 1.12 best");
  const double small_ratio =
      cell(100, 10'000, false, "100 n / 1e4 t", "(100 tasks/node)");
  const double large_ratio = cell(1000, 100'000, false, "1000 n / 1e5 t",
                                  "(100 tasks/node, larger net)");
  cell(1000, 100'000, true, "1000 n / 1e5 t", "het worst avg 4.052 @ 100 t/n");
  cell(1000, 1'000'000, true, "1000 n / 1e6 t", "het worst avg 1.955 @ 1000 t/n");

  std::printf("%s\n", table.render().c_str());
  std::printf("derived shape checks:\n");
  std::printf("  1e6-task factor is %.3f lower than 1e5 (paper: ~0.82 lower)\n",
              hom_1e5 - hom_1e6);
  std::printf("  same-ratio pair: smaller net faster by %.3f (paper: 0.086)\n",
              large_ratio - small_ratio);
  return 0;
}
