// Reproduces Table I: "The median distribution of tasks (or files) among
// nodes" — median per-node workload and its standard deviation for nine
// (nodes, tasks) combinations, averaged over trials.
//
// Paper values (100 trials): e.g. (1000, 1e6) -> median 692.300, sigma
// 996.982; medians sit at ~ln2 x mean because SHA-1 arcs are
// ~exponentially distributed.
#include <cstdio>
#include <vector>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/descriptive.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("table1_distribution", "Table I",
                         "initial workload distribution", 25);
  const std::size_t trials = session.trials();

  struct Row {
    std::size_t nodes;
    std::uint64_t tasks;
    double paper_median;
    double paper_sigma;
  };
  const std::vector<Row> rows = {
      {1000, 100'000, 69.410, 137.27},    {1000, 500'000, 346.570, 499.169},
      {1000, 1'000'000, 692.300, 996.982}, {5000, 100'000, 13.810, 20.477},
      {5000, 500'000, 69.280, 100.344},    {5000, 1'000'000, 138.360, 200.564},
      {10000, 100'000, 7.000, 10.492},     {10000, 500'000, 34.550, 50.366},
      {10000, 1'000'000, 69.180, 100.319}};

  support::TextTable table({"Nodes", "Tasks", "Median (ours)", "Median (paper)",
                            "sigma (ours)", "sigma (paper)"});

  for (const Row& row : rows) {
    const bench::WallTimer timer;
    std::vector<double> medians(trials), sigmas(trials);
    session.pool().parallel_for(trials, [&](std::size_t t) {
      const auto loads = exp::initial_workloads(
          row.nodes, row.tasks, support::mix_seed(support::env_seed(), t));
      std::vector<double> d(loads.begin(), loads.end());
      const auto s = stats::summarize(d);
      medians[t] = s.median;
      sigmas[t] = s.stddev;
    });
    const double mean_median = stats::summarize(medians).mean;
    const double mean_sigma = stats::summarize(sigmas).mean;
    const std::string cell = support::format_count(row.nodes) + "n/" +
                             support::format_count(row.tasks) + "t";
    const double wall = timer.elapsed_ms();
    session.record(cell, "median_workload_mean", mean_median, wall);
    session.record(cell, "workload_sigma_mean", mean_sigma);
    table.add_row({support::format_count(row.nodes),
                   support::format_count(row.tasks),
                   support::format_fixed(mean_median, 3),
                   support::format_fixed(row.paper_median, 3),
                   support::format_fixed(mean_sigma, 3),
                   support::format_fixed(row.paper_sigma, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: medians ~= ln(2) x mean workload (exponential arcs);\n"
      "sigma ~= mean workload.  Both should track the paper closely.\n");
  return 0;
}
