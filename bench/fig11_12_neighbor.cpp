// Reproduces Figures 11-12: Neighbor Injection (estimating) and Smart
// Neighbor Injection vs no strategy at tick 35 on the 1000-node /
// 100,000-task network.
//
// Expected shape (paper): the estimating variant shifts the histogram
// left — a lower maximum workload (~450 vs ~650 at tick 35) but MORE
// idle nodes than no strategy has busy low-load nodes; the smart variant
// keeps the lower maximum while idling far fewer nodes.
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/histogram.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig11_12_neighbor", "Figures 11-12",
                         "neighbor injection variants at tick 35", 1);

  const auto params = bench::paper_defaults(1000, 100'000);
  const auto seed = support::env_seed();

  const bench::WallTimer timer;
  const auto none = exp::run_with_snapshots(params, "none", seed, {35});
  const auto est =
      exp::run_with_snapshots(params, "neighbor-injection", seed, {35});
  const auto smart = exp::run_with_snapshots(params,
                                             "smart-neighbor-injection",
                                             seed, {35});

  auto max_of = [](const std::vector<std::uint64_t>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  const auto& ln = none.snapshots[0].workloads;
  const auto& le = est.snapshots[0].workloads;
  const auto& ls = smart.snapshots[0].workloads;

  std::printf("--- Figure 11: estimating neighbor injection ---\n%s",
              viz::render_comparison(
                  stats::workload_histogram(ln, 12).bins(), "no strategy",
                  stats::workload_histogram(le, 12).bins(),
                  "neighbor injection")
                  .c_str());
  std::printf("max workload: none %llu vs neighbor %llu "
              "(paper: ~650 vs ~450)\n\n",
              static_cast<unsigned long long>(max_of(ln)),
              static_cast<unsigned long long>(max_of(le)));

  std::printf("--- Figure 12: smart neighbor injection ---\n%s",
              viz::render_comparison(
                  stats::workload_histogram(ln, 12).bins(), "no strategy",
                  stats::workload_histogram(ls, 12).bins(),
                  "smart neighbor")
                  .c_str());
  std::printf("idle fractions: none %.3f | estimating %.3f | smart %.3f\n",
              stats::idle_fraction(ln), stats::idle_fraction(le),
              stats::idle_fraction(ls));
  std::printf("(paper: smart idles significantly fewer nodes than "
              "estimating)\n\n");
  session.record("run/none", "runtime_factor", none.runtime_factor,
                 timer.elapsed_ms(), 1);
  session.record("run/neighbor-injection", "runtime_factor",
                 est.runtime_factor, 0.0, 1);
  session.record("run/smart-neighbor-injection", "runtime_factor",
                 smart.runtime_factor, 0.0, 1);
  session.record("tick35/none", "max_workload",
                 static_cast<double>(max_of(ln)), 0.0, 1);
  session.record("tick35/neighbor-injection", "max_workload",
                 static_cast<double>(max_of(le)), 0.0, 1);
  session.record("tick35/smart-neighbor-injection", "idle_fraction",
                 stats::idle_fraction(ls), 0.0, 1);
  std::printf("runtime factors: none %.2f | neighbor %.2f | smart %.2f\n",
              none.runtime_factor, est.runtime_factor,
              smart.runtime_factor);
  std::printf("message-cost proxies: estimating made %llu placements with "
              "0 queries;\nsmart made %llu placements paying %llu workload "
              "queries (paper's traffic trade-off).\n",
              static_cast<unsigned long long>(
                  est.strategy_counters.sybils_created),
              static_cast<unsigned long long>(
                  smart.strategy_counters.sybils_created),
              static_cast<unsigned long long>(
                  smart.strategy_counters.workload_queries));
  return 0;
}
