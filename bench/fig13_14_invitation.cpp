// Reproduces Figures 13-14: the Invitation strategy vs no strategy
// (Figure 13) and vs smart neighbor injection (Figure 14) at tick 35 on
// the 1000-node / 100,000-task network.
//
// Expected shape (paper): invitation clearly beats no strategy (max load
// ~500 vs ~650); against smart neighbor, invitation leaves fewer
// low-workload nodes and more mid/high-workload nodes — while sending
// far fewer messages, because it reacts instead of probing.
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/histogram.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig13_14_invitation", "Figures 13-14",
                         "invitation at tick 35", 1);

  const auto params = bench::paper_defaults(1000, 100'000);
  const auto seed = support::env_seed();

  const bench::WallTimer timer;
  const auto none = exp::run_with_snapshots(params, "none", seed, {35});
  const auto inv = exp::run_with_snapshots(params, "invitation", seed, {35});
  const auto smart = exp::run_with_snapshots(params,
                                             "smart-neighbor-injection",
                                             seed, {35});

  auto max_of = [](const std::vector<std::uint64_t>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  const auto& ln = none.snapshots[0].workloads;
  const auto& li = inv.snapshots[0].workloads;
  const auto& ls = smart.snapshots[0].workloads;

  std::printf("--- Figure 13: invitation vs no strategy ---\n%s",
              viz::render_comparison(
                  stats::workload_histogram(ln, 12).bins(), "no strategy",
                  stats::workload_histogram(li, 12).bins(), "invitation")
                  .c_str());
  std::printf("max workload: none %llu vs invitation %llu "
              "(paper: ~650 vs ~500)\n\n",
              static_cast<unsigned long long>(max_of(ln)),
              static_cast<unsigned long long>(max_of(li)));

  std::printf("--- Figure 14: invitation vs smart neighbor ---\n%s",
              viz::render_comparison(
                  stats::workload_histogram(ls, 12).bins(), "smart neighbor",
                  stats::workload_histogram(li, 12).bins(), "invitation")
                  .c_str());
  std::printf("gini: smart %.3f vs invitation %.3f (paper: invitation "
              "load-balances better)\n\n",
              stats::gini(ls), stats::gini(li));

  session.record("run/none", "runtime_factor", none.runtime_factor,
                 timer.elapsed_ms(), 1);
  session.record("run/smart-neighbor-injection", "runtime_factor",
                 smart.runtime_factor, 0.0, 1);
  session.record("run/invitation", "runtime_factor", inv.runtime_factor,
                 0.0, 1);
  session.record("tick35/invitation", "max_workload",
                 static_cast<double>(max_of(li)), 0.0, 1);
  session.record("tick35/invitation", "gini", stats::gini(li), 0.0, 1);
  session.record("tick35/smart-neighbor-injection", "gini", stats::gini(ls),
                 0.0, 1);
  std::printf("runtime factors: none %.2f | smart %.2f | invitation %.2f\n",
              none.runtime_factor, smart.runtime_factor,
              inv.runtime_factor);
  std::printf(
      "traffic proxies: smart paid %llu workload queries + %llu placements;\n"
      "invitation paid %llu announcements (%llu accepted), %llu placements\n"
      "— the reactive strategy's bandwidth advantage (§VI-D).\n",
      static_cast<unsigned long long>(
          smart.strategy_counters.workload_queries),
      static_cast<unsigned long long>(smart.strategy_counters.sybils_created),
      static_cast<unsigned long long>(
          inv.strategy_counters.invitations_sent),
      static_cast<unsigned long long>(
          inv.strategy_counters.invitations_accepted),
      static_cast<unsigned long long>(inv.strategy_counters.sybils_created));
  return 0;
}
