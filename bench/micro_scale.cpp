// Micro-benchmarks for the flat-ring data layer at the scales the
// roadmap targets: world construction (bulk load + two-pass task
// assignment), successor-arc walks, point lookups (cover), and churn
// (join/depart cycles driving the staged-merge machinery).  These are
// the throughput numbers the scaling work is judged by — see the
// "Performance trajectory" section of EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "harness/micro.hpp"

#include <optional>

#include "sim/world.hpp"
#include "support/rng.hpp"

namespace {

using dhtlb::sim::Params;
using dhtlb::sim::World;
using dhtlb::support::Rng;
using dhtlb::support::Uint160;

Params make_params(std::size_t nodes, std::uint64_t tasks) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

void BM_ScaleConstruction(benchmark::State& state) {
  // Full world build: SHA-1 placement, bulk index sort, exact-owner
  // task assignment.  Tasks scale 2x nodes, matching tableS_scale.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const Params p = make_params(nodes, 2 * nodes);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    World w(p, rng);
    benchmark::DoNotOptimize(w.remaining_tasks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScaleConstruction)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleArcWalk(benchmark::State& state) {
  // successor_arcs(id, 5) from every vnode — the strategy inner loop.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  World w(make_params(nodes, 2 * nodes), rng);
  const auto ids = w.ring_ids();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& id : ids) {
      for (const auto& arc : w.successor_arcs(id, 5)) sum += arc.task_count;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 5);
}
BENCHMARK(BM_ScaleArcWalk)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleCover(benchmark::State& state) {
  // Point lookups at uniformly random keys — the task-routing path.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  World w(make_params(nodes, 2 * nodes), rng);
  Rng key_rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.arc_covering(key_rng.uniform_u160()));
  }
}
BENCHMARK(BM_ScaleCover)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kNanosecond);

void BM_ScaleChurn(benchmark::State& state) {
  // One depart + one join per iteration: staged inserts, tombstoned
  // erases, and the amortized merge passes that fold them away.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  World w(make_params(nodes, 2 * nodes), rng);
  Rng pick(5);
  for (auto _ : state) {
    const auto& alive = w.alive_indices();
    const auto victim =
        alive[static_cast<std::size_t>(pick.range(0, alive.size() - 1))];
    benchmark::DoNotOptimize(w.depart(victim));
    benchmark::DoNotOptimize(w.join_from_pool());
  }
}
BENCHMARK(BM_ScaleChurn)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return dhtlb::bench::micro_main("micro_scale", argc, argv);
}
