// Evaluates the paper's §VII future-work directions, implemented in
// src/lb as extensions:
//   * strength-aware acquisition — "consider the node strength as a
//     factor": does it close the heterogeneous-efficiency gap?
//   * chosen-ID (median) splits — "if we removed the assumption that
//     nodes cannot choose their own ID": how much of the remaining gap
//     to the ideal is the no-ID-choice assumption responsible for?
//
// Compares the extensions against the paper's best (random injection)
// and the matching information-model baselines on homogeneous and
// heterogeneous networks.
#include <cstdio>

#include "lb/factory.hpp"
#include "repro_util.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableF_future_work", "Future work (SS VII)",
                         "extension strategies", 8);

  auto run_set = [&](const char* title, const char* cell_prefix,
                     sim::Params p,
                     std::initializer_list<const char*> strategies) {
    std::printf("--- %s ---\n", title);
    support::TextTable table(
        {"strategy", "runtime factor", "sybils/trial", "queries/trial"});
    // One batched fan per set: the strategies share the pool barrier.
    std::vector<exp::CellSpec> cells;
    std::vector<std::string> labels;
    for (const char* name : strategies) {
      cells.push_back({p, name, session.trials()});
      labels.push_back(std::string(cell_prefix) + "/" + name);
    }
    const auto aggs = session.run_grid(
        cells, labels, std::string(cell_prefix) + "/__grid__");
    for (const auto& agg : aggs) {
      table.add_row({agg.strategy,
                     support::format_fixed(agg.runtime_factor.mean, 3),
                     support::format_fixed(agg.mean_sybils_created, 0),
                     support::format_fixed(agg.mean_workload_queries, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  };

  // Homogeneous: chosen-ID vs the paper's strategies — isolates the
  // value of ID choice at both reach scopes.
  run_set("homogeneous 1000 n / 1e5 t", "hom",
          bench::paper_defaults(1000, 100'000),
          {"none", "random-injection", "smart-neighbor-injection",
           "chosen-id-neighbor", "chosen-id-global"});

  // Heterogeneous with strength consumption: strength-aware vs blind.
  sim::Params het = bench::paper_defaults(1000, 100'000);
  het.heterogeneous = true;
  het.work_measure = sim::WorkMeasure::kStrengthPerTick;
  run_set("heterogeneous (strength/tick) 1000 n / 1e5 t", "het", het,
          {"none", "random-injection", "invitation", "strength-aware",
           "chosen-id-global"});

  // Wide-disparity heterogeneous — where the paper saw the worst
  // degradation (maxSybils 10).
  sim::Params wide = het;
  wide.max_sybils = 10;
  run_set("heterogeneous, maxSybils=10 (wide disparity)", "het-wide", wide,
          {"random-injection", "strength-aware"});

  std::printf(
      "Reading guide: strength-aware should beat random injection on the\n"
      "heterogeneous rows (the paper's efficiency gap); chosen-id-global\n"
      "approaching 1.0 bounds what ID choice alone can buy.\n");
  return 0;
}
