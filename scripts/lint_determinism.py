#!/usr/bin/env python3
"""Determinism linter: bans nondeterminism sources in golden-affecting code.

The repo's crown jewel is bit-exact reproduction: scenario goldens, bench
value baselines, and trace/metrics files must byte-compare across runs,
machines, and DHTLB_THREADS settings.  Golden diffs catch violations only
after the fact; this linter rejects the five nondeterminism *sources* at
review time, before they can reach an output path:

  unordered-iteration  std::unordered_{map,set,...} — iteration order is
                       hash-seed- and libstdc++-version-dependent, so any
                       iteration that feeds output silently breaks goldens.
                       Membership-only uses are fine: annotate them.
  wall-clock           chrono *_clock::now() / time() / gettimeofday /
                       clock_gettime outside the telemetry wall-ms
                       allowlist (bench wall_ms is zeroed in deterministic
                       mode; simulation code must use the tick clock).
  raw-rand             std::rand / srand / std::random_device — unseeded
                       global entropy.  All randomness flows through
                       support::Rng streams derived from mix_seed.
  pointer-order        ordering or hashing keyed on pointer values
                       (std::map<T*,...>, std::hash<T*>, reinterpret_cast
                       to [u]intptr_t) — addresses vary run to run (ASLR).
  unseeded-rng         a <random> engine constructed without an explicit
                       seed: it silently uses the fixed default seed,
                       correlating streams that must be independent.
                       Seed explicitly from the trial's mix_seed stream.

Escape hatches, in preference order:
  1. inline, for a single audited line (or the line right after a
     comment-only line):   // dhtlb:lint-allow(<rule>[,<rule>...]) why...
  2. file-wide, for files whose whole job is the banned thing (e.g. the
     bench wall-clock timer): an entry in scripts/determinism_allowlist.txt
     of the form `<repo-relative-path>:<rule>`.

Engine: a comment/string-aware line scrubber plus per-rule regexes — no
clang tooling required, so the lint runs anywhere python3 runs.  When
python libclang bindings are importable, --use-libclang upgrades the
unordered-iteration rule from "any unordered container mention" to "a
range-for over an unordered container" (AST-confirmed iteration); the
regex engine remains the authoritative CI gate.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
`--self-test` proves every rule trips on an injected violation and that
both escape hatches suppress, mirroring compare_bench.py --self-test.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

SCAN_DIRS = ("src", "bench", "examples")
SCAN_EXTENSIONS = (".hpp", ".cpp", ".h")
ALLOW_RE = re.compile(r"dhtlb:lint-allow\(([a-z0-9,\- ]+)\)")

# rule name -> (compiled regex over scrubbed code, one-line message)
RULES = {
    "unordered-iteration": (
        re.compile(r"std::unordered_(map|set|multimap|multiset)\s*<"),
        "unordered container: iteration order can leak into goldens; use "
        "std::map / a sorted vector, or annotate a membership-only use",
    ),
    "wall-clock": (
        re.compile(
            r"(steady_clock|system_clock|high_resolution_clock)\s*::\s*now"
            r"\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\("
            r"|\bstd::time\s*\(|(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"
        ),
        "wall-clock read outside the telemetry wall-ms allowlist; simulation "
        "code must derive time from the tick counter",
    ),
    "raw-rand": (
        re.compile(
            r"\bstd::rand\b|(?<![\w:])srand\s*\(|\brandom_device\b"
            r"|(?<![\w:.])rand\s*\(\s*\)"
        ),
        "raw C/global randomness; draw from a support::Rng stream seeded "
        "via mix_seed instead",
    ),
    "pointer-order": (
        re.compile(
            r"std::(map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]"
            r"|std::hash\s*<[^<>]*\*\s*>"
            r"|reinterpret_cast\s*<\s*(std::)?u?intptr_t\s*>"
        ),
        "ordering/hashing keyed on pointer values; addresses vary run to "
        "run (ASLR) — key on stable ids instead",
    ),
    "unseeded-rng": (
        re.compile(
            r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine"
            r"|ranlux24(_base)?|ranlux48(_base)?|knuth_b)"
            r"\s+\w+\s*(;|\{\s*\})"
        ),
        "RNG engine constructed without an explicit seed (fixed default "
        "seed silently correlates streams); seed from mix_seed",
    ),
}


def scrub_code(lines):
    """Returns lines with comments, string and char literals blanked.

    A small state machine good enough for this codebase: handles //, block
    comments spanning lines, escaped quotes.  Raw string literals are not
    specially handled (none in tree; contents would be scrubbed as a
    plain string until the closing quote).
    """
    scrubbed = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        state = "code" if not in_block else "block"
        while i < len(line):
            c = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if state == "code":
                if c == "/" and nxt == "/":
                    break  # rest of line is a comment
                if c == "/" and nxt == "*":
                    state = "block"
                    i += 2
                    continue
                if c == '"':
                    state = "string"
                    out.append(c)
                    i += 1
                    continue
                if c == "'":
                    state = "char"
                    out.append(c)
                    i += 1
                    continue
                out.append(c)
                i += 1
            elif state == "block":
                if c == "*" and nxt == "/":
                    state = "code"
                    i += 2
                else:
                    i += 1
            elif state in ("string", "char"):
                quote = '"' if state == "string" else "'"
                if c == "\\":
                    i += 2
                    continue
                if c == quote:
                    state = "code"
                    out.append(c)
                i += 1
        in_block = state == "block"
        scrubbed.append("".join(out))
    return scrubbed


def inline_allows(lines):
    """Maps 1-based line number -> set of rules allowed on that line.

    An allow comment covers its own line; when the line holds nothing but
    the comment, it covers the next line too (so a long rationale can sit
    above the code it blesses).
    """
    allows = {}
    pending = {}
    code = scrub_code(lines)
    for idx, line in enumerate(lines, start=1):
        here = set(pending.pop(idx, ()))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            unknown = rules - set(RULES)
            if unknown:
                raise ValueError(
                    f"line {idx}: unknown lint-allow rule(s): "
                    f"{', '.join(sorted(unknown))}"
                )
            here |= rules
            if not code[idx - 1].strip():  # comment-only line
                pending[idx + 1] = set(pending.get(idx + 1, ())) | rules
        if here:
            allows[idx] = here
    return allows


def load_allowlist(path, root):
    """Parses `<path>:<rule>` entries into {relpath: set(rules)}."""
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if ":" not in line:
                raise ValueError(f"{path}:{lineno}: expected <path>:<rule>")
            rel, rule = (part.strip() for part in line.rsplit(":", 1))
            if rule not in RULES:
                raise ValueError(f"{path}:{lineno}: unknown rule '{rule}'")
            if not os.path.exists(os.path.join(root, rel)):
                raise ValueError(
                    f"{path}:{lineno}: allowlisted file '{rel}' does not "
                    "exist (stale entry?)"
                )
            entries.setdefault(rel, set()).add(rule)
    return entries


def libclang_unordered_iteration_lines(path):
    """AST-confirmed iteration: 1-based lines of range-fors over unordered
    containers, or None when libclang is unusable for this file."""
    try:
        from clang import cindex  # noqa: PLC0415 — optional dependency
    except ImportError:
        return None
    try:
        tu = cindex.Index.create().parse(path, args=["-std=c++20"])
        lines = set()
        def walk(cursor):
            if cursor.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children and "unordered_" in children[0].type.spelling:
                    lines.add(cursor.location.line)
            for child in cursor.get_children():
                walk(child)
        walk(tu.cursor)
        return lines
    except Exception:  # noqa: BLE001 — any parse hiccup → regex fallback
        return None


def scan_file(path, rel, file_allows, use_libclang):
    """Returns a list of (rel, line_number, rule, source_line) findings."""
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    try:
        allows = inline_allows(lines)
    except ValueError as err:
        raise ValueError(f"{rel}: {err}") from err
    code = scrub_code(lines)

    ast_unordered = None
    if use_libclang:
        ast_unordered = libclang_unordered_iteration_lines(path)

    findings = []
    for lineno, stripped in enumerate(code, start=1):
        if not stripped.strip():
            continue
        for rule, (pattern, _msg) in RULES.items():
            if rule in file_allows:
                continue
            if rule == "unordered-iteration" and ast_unordered is not None:
                hit = lineno in ast_unordered
            else:
                hit = pattern.search(stripped) is not None
            if hit and rule not in allows.get(lineno, ()):
                findings.append((rel, lineno, rule, lines[lineno - 1].strip()))
    return findings


def scan_tree(root, allowlist, use_libclang):
    findings = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(SCAN_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                findings.extend(
                    scan_file(path, rel, allowlist.get(rel, set()),
                              use_libclang)
                )
    return findings


def report(findings):
    for rel, lineno, rule, line in findings:
        print(f"{rel}:{lineno}: [{rule}] {RULES[rule][1]}")
        print(f"    {line}")
    print(
        f"lint_determinism: {len(findings)} finding(s) — annotate audited "
        "lines with // dhtlb:lint-allow(<rule>) or extend "
        "scripts/determinism_allowlist.txt",
        file=sys.stderr,
    )


# ---------------------------------------------------------------- self-test

SELF_TEST_VIOLATIONS = {
    "unordered-iteration": (
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> m;\n"
        "int f() { int s = 0; for (auto& [k, v] : m) s += v; return s; }\n"
    ),
    "wall-clock": (
        "#include <chrono>\n"
        "double f() { auto t = std::chrono::steady_clock::now();\n"
        "  return t.time_since_epoch().count(); }\n"
    ),
    "raw-rand": (
        "#include <cstdlib>\n"
        "int f() { return std::rand(); }\n"
    ),
    "pointer-order": (
        "#include <map>\n"
        "struct N {};\n"
        "std::map<N*, int> by_address;\n"
    ),
    "unseeded-rng": (
        "#include <random>\n"
        "int f() { std::mt19937 gen; return (int)gen(); }\n"
    ),
}


def self_test():
    failures = []

    def check(label, ok):
        print(f"self-test: {'ok' if ok else 'FAIL'} — {label}")
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "src")
        os.makedirs(src)
        # 1. Every rule trips on its injected violation.
        for rule, body in SELF_TEST_VIOLATIONS.items():
            name = f"violation_{rule.replace('-', '_')}.cpp"
            with open(os.path.join(src, name), "w", encoding="utf-8") as fh:
                fh.write(body)
        findings = scan_tree(tmp, {}, use_libclang=False)
        tripped = {rule for (_f, _l, rule, _s) in findings}
        for rule in RULES:
            check(f"rule '{rule}' trips on an injected violation",
                  rule in tripped)
        # Each violation file must be flagged for its own rule.
        for rule in RULES:
            rel = f"src/violation_{rule.replace('-', '_')}.cpp"
            mine = [f for f in findings if f[0] == rel and f[2] == rule]
            check(f"finding for '{rule}' lands in {rel}", bool(mine))

        # 2. Inline allow comments suppress (same-line and comment-line).
        with open(os.path.join(src, "allowed.cpp"), "w",
                  encoding="utf-8") as fh:
            fh.write(
                "#include <unordered_set>\n"
                "// membership-only probe set, never iterated —\n"
                "// dhtlb:lint-allow(unordered-iteration)\n"
                "std::unordered_set<int> seen;\n"
                "int g() { return std::rand(); }"
                "  // dhtlb:lint-allow(raw-rand) audited\n"
            )
        findings = scan_tree(tmp, {}, use_libclang=False)
        allowed = [f for f in findings if f[0] == "src/allowed.cpp"]
        check("inline dhtlb:lint-allow suppresses both comment styles",
              not allowed)

        # 3. File-wide allowlist entries suppress.
        with open(os.path.join(src, "timer.hpp"), "w",
                  encoding="utf-8") as fh:
            fh.write(
                "#include <chrono>\n"
                "inline auto now() { return "
                "std::chrono::steady_clock::now(); }\n"
            )
        allow_path = os.path.join(tmp, "allow.txt")
        with open(allow_path, "w", encoding="utf-8") as fh:
            fh.write("# telemetry timer owns the wall clock\n"
                     "src/timer.hpp:wall-clock\n")
        allowlist = load_allowlist(allow_path, tmp)
        findings = scan_tree(tmp, allowlist, use_libclang=False)
        check("allowlist file suppresses file-wide",
              not [f for f in findings if f[0] == "src/timer.hpp"])

        # 4. Banned patterns inside comments and strings do NOT trip.
        with open(os.path.join(src, "comments.cpp"), "w",
                  encoding="utf-8") as fh:
            fh.write(
                "// docs may mention std::random_device freely\n"
                "/* and std::unordered_map<int,int> in block\n"
                "   comments too */\n"
                'const char* kMsg = "std::rand() is banned";\n'
            )
        findings = scan_tree(tmp, {}, use_libclang=False)
        check("comments and string literals are scrubbed",
              not [f for f in findings if f[0] == "src/comments.cpp"])

        # 5. Unknown rule names in an allow comment are an error.
        with open(os.path.join(src, "bad_allow.cpp"), "w",
                  encoding="utf-8") as fh:
            fh.write("int x;  // dhtlb:lint-allow(no-such-rule)\n")
        try:
            scan_tree(tmp, {}, use_libclang=False)
            check("unknown lint-allow rule rejected", False)
        except ValueError:
            check("unknown lint-allow rule rejected", True)
        os.remove(os.path.join(src, "bad_allow.cpp"))

    if failures:
        print(f"self-test: {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("self-test: OK — every rule trips and every escape hatch holds")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="determinism linter over src/, bench/, and examples/")
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: script's parent)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/scripts/determinism_allowlist.txt)")
    parser.add_argument("--use-libclang", action="store_true",
                        help="AST-confirm unordered-iteration findings via "
                             "python libclang when importable (falls back "
                             "to the regex engine per file)")
    parser.add_argument("--self-test", action="store_true",
                        help="prove every rule trips on an injected "
                             "violation, then exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    allow_path = args.allowlist or os.path.join(
        root, "scripts", "determinism_allowlist.txt")
    try:
        allowlist = load_allowlist(allow_path, root)
        findings = scan_tree(root, allowlist, args.use_libclang)
    except ValueError as err:
        print(f"lint_determinism: error: {err}", file=sys.stderr)
        return 2

    if findings:
        report(findings)
        return 1
    print("lint_determinism: OK — src/, bench/, examples/ are clean "
          f"({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
