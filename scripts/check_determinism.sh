#!/usr/bin/env bash
# Determinism gate: the same seed must produce byte-identical output at
# every worker-thread count.  With the sharded parallel tick engine
# (DESIGN.md "Parallel tick engine") this is the repo's core contract:
# trials are deterministic functions of (base_seed, trial_index), tick
# outcomes of (seed, tick, shard) — DHTLB_THREADS must be inert.
#
# Four artifact families are checked across the thread matrix
# (default 1 2 8 — single-threaded reference, first parallel split,
# oversubscribed):
#   * examples/strategy_comparison text output (plus a repeat run at
#     the reference count, catching nondeterminism unrelated to threads)
#   * one reduced-trial bench binary's BENCH_*.json telemetry
#     (DHTLB_BENCH_DETERMINISTIC=1 zeroes wall_ms)
#   * a canned scenario's telemetry JSON, and the streamed-provisioning
#     scenario's (its arrival folds are a parallel phase of their own)
#   * the scenario's trace + metrics observability artifacts, plus the
#     sinks-attached run's telemetry vs the plain run's (observation
#     must not perturb the simulation)
#
# Usage: scripts/check_determinism.sh [build_dir] [nodes] [tasks] [trials]
# build_dir defaults to $DHTLB_BUILD_DIR when set (so wrappers with an
# existing configured tree need no positional argument), else "build".
# DHTLB_THREAD_MATRIX overrides the thread counts (space-separated;
# the first entry is the reference all others are compared against).
# Exit 0 on success, 1 on a determinism break, 2 when the binary is missing.
set -euo pipefail

BUILD_DIR="${1:-${DHTLB_BUILD_DIR:-build}}"
NODES="${2:-100}"
TASKS="${3:-10000}"
TRIALS="${4:-3}"
THREAD_MATRIX=(${DHTLB_THREAD_MATRIX:-1 2 8})
REF="${THREAD_MATRIX[0]}"
BIN="$BUILD_DIR/examples/strategy_comparison"

if [[ ! -x "$BIN" ]]; then
  echo "check_determinism: $BIN not found — build the tree first" >&2
  echo "  cmake --preset audit && cmake --build --preset audit -j" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

export DHTLB_SEED=3735928559

fail=0

# compare <reference> <candidate> <message>
compare() {
  if ! cmp -s "$1" "$2"; then
    echo "check_determinism: FAIL — $3" >&2
    diff -u "$1" "$2" >&2 || true
    fail=1
  fi
}

echo "check_determinism: thread matrix: ${THREAD_MATRIX[*]} (ref t$REF)"

# Example output: repeat run at the reference count, then the matrix.
echo "check_determinism: strategy_comparison (t$REF, run A)"
DHTLB_THREADS="$REF" "$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/ex_ref.txt"
echo "check_determinism: strategy_comparison (t$REF, run B)"
DHTLB_THREADS="$REF" "$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/ex_rep.txt"
compare "$workdir/ex_ref.txt" "$workdir/ex_rep.txt" \
  "repeated run differs with the same seed"
for t in "${THREAD_MATRIX[@]:1}"; do
  echo "check_determinism: strategy_comparison (t$t)"
  DHTLB_THREADS="$t" "$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/ex_t$t.txt"
  compare "$workdir/ex_ref.txt" "$workdir/ex_t$t.txt" \
    "strategy_comparison output depends on the thread count (t$REF vs t$t)"
done

# Bench telemetry: the batched trial fan must emit the same JSON
# records regardless of the worker-thread count.
BENCH_BIN="$BUILD_DIR/bench/table2_churn"
if [[ -x "$BENCH_BIN" ]]; then
  for t in "${THREAD_MATRIX[@]}"; do
    mkdir -p "$workdir/bench$t"
    echo "check_determinism: bench telemetry (t$t)"
    DHTLB_THREADS="$t" DHTLB_TRIALS=1 DHTLB_BENCH_DETERMINISTIC=1 \
      DHTLB_BENCH_DIR="$workdir/bench$t" "$BENCH_BIN" > /dev/null
  done
  for t in "${THREAD_MATRIX[@]:1}"; do
    compare "$workdir/bench$REF/BENCH_table2_churn.json" \
            "$workdir/bench$t/BENCH_table2_churn.json" \
      "bench JSON depends on thread count (t$REF vs t$t)"
  done
else
  echo "check_determinism: note — $BENCH_BIN not built, skipping bench JSON check"
fi

# Scenario-engine determinism: the churn-heavy parallel soak drives the
# sharded tick path (parallel departure draws, cross-arc fold, sharded
# consumption) hard enough that any ordering bug surfaces in its JSON.
SCN_BIN="$BUILD_DIR/examples/dhtlb_scenario"
SCN_FILE="$(dirname "$0")/../scenarios/parallel_churn_soak.scn"
SCN_JSON="BENCH_scenario_parallel_churn_soak.json"
if [[ -x "$SCN_BIN" && -f "$SCN_FILE" ]]; then
  for t in "${THREAD_MATRIX[@]}"; do
    mkdir -p "$workdir/scn$t"
    echo "check_determinism: scenario telemetry (t$t)"
    DHTLB_THREADS="$t" DHTLB_BENCH_DIR="$workdir/scn$t" \
      "$SCN_BIN" "$SCN_FILE" --quiet > /dev/null
  done
  for t in "${THREAD_MATRIX[@]:1}"; do
    compare "$workdir/scn$REF/$SCN_JSON" "$workdir/scn$t/$SCN_JSON" \
      "scenario JSON depends on thread count (t$REF vs t$t)"
  done
else
  echo "check_determinism: note — $SCN_BIN not built, skipping scenario JSON check"
fi

# Streamed-provisioning determinism: the arrival phase adds a third
# parallel fold (per-(tick, shard) key draws) between churn and
# consumption; the streamed scenario's telemetry must be as
# thread-inert as the preallocated one's.
STREAM_FILE="$(dirname "$0")/../scenarios/streamed_overload.scn"
STREAM_JSON="BENCH_scenario_streamed_overload.json"
if [[ -x "$SCN_BIN" && -f "$STREAM_FILE" ]]; then
  for t in "${THREAD_MATRIX[@]}"; do
    mkdir -p "$workdir/stream$t"
    echo "check_determinism: streamed scenario telemetry (t$t)"
    DHTLB_THREADS="$t" DHTLB_BENCH_DIR="$workdir/stream$t" \
      "$SCN_BIN" "$STREAM_FILE" --quiet > /dev/null
  done
  for t in "${THREAD_MATRIX[@]:1}"; do
    compare "$workdir/stream$REF/$STREAM_JSON" "$workdir/stream$t/$STREAM_JSON" \
      "streamed scenario JSON depends on thread count (t$REF vs t$t)"
  done
else
  echo "check_determinism: note — streamed scenario unavailable, skipping"
fi

# Observability determinism: trace + metrics files from the same
# scenario must byte-compare across the matrix, and attaching the sinks
# must not change the telemetry JSON (observation invariance).
if [[ -x "$SCN_BIN" && -f "$SCN_FILE" ]]; then
  for t in "${THREAD_MATRIX[@]}"; do
    mkdir -p "$workdir/obs$t"
    echo "check_determinism: trace/metrics (t$t)"
    DHTLB_THREADS="$t" DHTLB_BENCH_DIR="$workdir/obs$t" \
      "$SCN_BIN" "$SCN_FILE" \
      --trace="$workdir/obs$t/trace.json" \
      --metrics="$workdir/obs$t/metrics.jsonl" --quiet > /dev/null
  done
  for t in "${THREAD_MATRIX[@]:1}"; do
    for artifact in trace.json metrics.jsonl; do
      compare "$workdir/obs$REF/$artifact" "$workdir/obs$t/$artifact" \
        "$artifact depends on thread count (t$REF vs t$t)"
    done
  done
  compare "$workdir/scn$REF/$SCN_JSON" "$workdir/obs$REF/$SCN_JSON" \
    "attaching sinks changed the telemetry"
else
  echo "check_determinism: note — $SCN_BIN not built, skipping trace/metrics check"
fi

# Serving-plane determinism: dhtlb_serve telemetry must byte-compare
# across the full (engine threads x reader threads) matrix — both are
# pure execution knobs.  Deterministic mode zeroes the wall-derived
# latency rows; every count and value stays exact.
SERVE_BIN="$BUILD_DIR/examples/dhtlb_serve"
SERVE_FILE="$(dirname "$0")/../scenarios/serve_churn_soak.scn"
SERVE_JSON="BENCH_serve_serve_churn_soak.json"
if [[ -x "$SERVE_BIN" && -f "$SERVE_FILE" ]]; then
  READER_MATRIX=(${DHTLB_READER_MATRIX:-1 4 8})
  ref_dir=""
  for t in "${THREAD_MATRIX[@]}"; do
    for r in "${READER_MATRIX[@]}"; do
      mkdir -p "$workdir/serve_t${t}_r${r}"
      echo "check_determinism: serve telemetry (t$t, r$r)"
      DHTLB_THREADS="$t" DHTLB_BENCH_DETERMINISTIC=1 \
        DHTLB_BENCH_DIR="$workdir/serve_t${t}_r${r}" \
        "$SERVE_BIN" "$SERVE_FILE" --readers "$r" --quiet > /dev/null
      if [[ -z "$ref_dir" ]]; then
        ref_dir="$workdir/serve_t${t}_r${r}"
      else
        compare "$ref_dir/$SERVE_JSON" \
                "$workdir/serve_t${t}_r${r}/$SERVE_JSON" \
          "serve JSON depends on execution knobs (t${THREAD_MATRIX[0]}/r${READER_MATRIX[0]} vs t$t/r$r)"
      fi
    done
  done
else
  echo "check_determinism: note — $SERVE_BIN not built, skipping serve check"
fi

# Fuzzer determinism: the generator is a pure function of
# (profile, seed) — two emit passes must produce byte-identical corpus
# files — and a small audited batch must pass the runner's own
# cross-thread telemetry comparison at 1 vs 4 workers (the runner exits
# nonzero on any auditor failure or telemetry mismatch).
FUZZ_BIN="$BUILD_DIR/examples/dhtlb_fuzz"
if [[ -x "$FUZZ_BIN" ]]; then
  for pass in a b; do
    mkdir -p "$workdir/fuzz_emit_$pass"
    echo "check_determinism: fuzz corpus emit (pass $pass)"
    "$FUZZ_BIN" --profile mixed --seed "$DHTLB_SEED" --count 5 \
      --emit-only --emit-dir "$workdir/fuzz_emit_$pass" --quiet > /dev/null
  done
  for scn in "$workdir"/fuzz_emit_a/*.scn; do
    compare "$scn" "$workdir/fuzz_emit_b/$(basename "$scn")" \
      "fuzz generator is not a pure function of (profile, seed)"
  done
  echo "check_determinism: fuzz batch (t1 vs t4, audited)"
  if ! "$FUZZ_BIN" --profile mixed --seed "$DHTLB_SEED" --count 3 \
      --audit --threads-matrix 1,4 --out-dir "$workdir/fuzz_run" \
      --quiet > /dev/null; then
    echo "check_determinism: FAIL — fuzz batch telemetry differs across threads (or audit failed); artifacts under $workdir/fuzz_run" >&2
    ls "$workdir/fuzz_run" >&2 || true
    fail=1
  fi
else
  echo "check_determinism: note — $FUZZ_BIN not built, skipping fuzz check"
fi

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_determinism: OK — byte-identical across ${THREAD_MATRIX[*]} threads"
