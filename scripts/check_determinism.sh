#!/usr/bin/env bash
# Determinism gate: two runs of examples/strategy_comparison with the
# same seed must produce byte-identical output, including one run at a
# different parallelism level (trials are deterministic functions of
# (base_seed, trial_index), so the thread count must not matter).
#
# Also diffs one reduced-trial bench binary's BENCH_*.json telemetry
# across DHTLB_THREADS=1 vs 4 (with DHTLB_BENCH_DETERMINISTIC=1 so
# wall_ms is zeroed): the batched trial fan must produce byte-identical
# structured output at any parallelism.
#
# Usage: scripts/check_determinism.sh [build_dir] [nodes] [tasks] [trials]
# build_dir defaults to $DHTLB_BUILD_DIR when set (so wrappers with an
# existing configured tree need no positional argument), else "build".
# Exit 0 on success, 1 on a determinism break, 2 when the binary is missing.
set -euo pipefail

BUILD_DIR="${1:-${DHTLB_BUILD_DIR:-build}}"
NODES="${2:-100}"
TASKS="${3:-10000}"
TRIALS="${4:-3}"
BIN="$BUILD_DIR/examples/strategy_comparison"

if [[ ! -x "$BIN" ]]; then
  echo "check_determinism: $BIN not found — build the tree first" >&2
  echo "  cmake --preset audit && cmake --build --preset audit -j" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

export DHTLB_SEED=3735928559

echo "check_determinism: run A (default threads)"
"$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/run_a.txt"
echo "check_determinism: run B (default threads)"
"$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/run_b.txt"
echo "check_determinism: run C (single thread)"
DHTLB_THREADS=1 "$BIN" "$NODES" "$TASKS" "$TRIALS" > "$workdir/run_c.txt"

fail=0
if ! cmp -s "$workdir/run_a.txt" "$workdir/run_b.txt"; then
  echo "check_determinism: FAIL — repeated run differs with the same seed" >&2
  diff -u "$workdir/run_a.txt" "$workdir/run_b.txt" >&2 || true
  fail=1
fi
if ! cmp -s "$workdir/run_a.txt" "$workdir/run_c.txt"; then
  echo "check_determinism: FAIL — output depends on the thread count" >&2
  diff -u "$workdir/run_a.txt" "$workdir/run_c.txt" >&2 || true
  fail=1
fi

# Bench telemetry determinism: the batched trial fan must emit the same
# JSON records regardless of the worker-thread count.
BENCH_BIN="$BUILD_DIR/bench/table2_churn"
if [[ -x "$BENCH_BIN" ]]; then
  mkdir -p "$workdir/bench1" "$workdir/bench4"
  echo "check_determinism: bench telemetry (1 thread)"
  DHTLB_THREADS=1 DHTLB_TRIALS=1 DHTLB_BENCH_DETERMINISTIC=1 \
    DHTLB_BENCH_DIR="$workdir/bench1" "$BENCH_BIN" > /dev/null
  echo "check_determinism: bench telemetry (4 threads)"
  DHTLB_THREADS=4 DHTLB_TRIALS=1 DHTLB_BENCH_DETERMINISTIC=1 \
    DHTLB_BENCH_DIR="$workdir/bench4" "$BENCH_BIN" > /dev/null
  if ! cmp -s "$workdir/bench1/BENCH_table2_churn.json" \
              "$workdir/bench4/BENCH_table2_churn.json"; then
    echo "check_determinism: FAIL — bench JSON depends on thread count" >&2
    diff -u "$workdir/bench1/BENCH_table2_churn.json" \
            "$workdir/bench4/BENCH_table2_churn.json" >&2 || true
    fail=1
  fi
else
  echo "check_determinism: note — $BENCH_BIN not built, skipping bench JSON check"
fi

# Scenario-engine determinism: one canned scenario's telemetry JSON must
# byte-compare across DHTLB_THREADS=1 vs 4 (the scenario VM draws from
# seed-mixed streams only, so parallelism settings must be inert).
SCN_BIN="$BUILD_DIR/examples/dhtlb_scenario"
SCN_FILE="$(dirname "$0")/../scenarios/flash_crowd.scn"
if [[ -x "$SCN_BIN" && -f "$SCN_FILE" ]]; then
  mkdir -p "$workdir/scn1" "$workdir/scn4"
  echo "check_determinism: scenario telemetry (1 thread)"
  DHTLB_THREADS=1 DHTLB_BENCH_DIR="$workdir/scn1" \
    "$SCN_BIN" "$SCN_FILE" --quiet > /dev/null
  echo "check_determinism: scenario telemetry (4 threads)"
  DHTLB_THREADS=4 DHTLB_BENCH_DIR="$workdir/scn4" \
    "$SCN_BIN" "$SCN_FILE" --quiet > /dev/null
  if ! cmp -s "$workdir/scn1/BENCH_scenario_flash_crowd.json" \
              "$workdir/scn4/BENCH_scenario_flash_crowd.json"; then
    echo "check_determinism: FAIL — scenario JSON depends on thread count" >&2
    diff -u "$workdir/scn1/BENCH_scenario_flash_crowd.json" \
            "$workdir/scn4/BENCH_scenario_flash_crowd.json" >&2 || true
    fail=1
  fi
else
  echo "check_determinism: note — $SCN_BIN not built, skipping scenario JSON check"
fi

# Observability determinism: trace + metrics files from the same
# scenario must byte-compare across DHTLB_THREADS=1 vs 4, and attaching
# the sinks must not change the telemetry JSON (observation invariance).
if [[ -x "$SCN_BIN" && -f "$SCN_FILE" ]]; then
  mkdir -p "$workdir/obs1" "$workdir/obs4"
  echo "check_determinism: trace/metrics (1 thread)"
  DHTLB_THREADS=1 DHTLB_BENCH_DIR="$workdir/obs1" "$SCN_BIN" "$SCN_FILE" \
    --trace="$workdir/obs1/trace.json" \
    --metrics="$workdir/obs1/metrics.jsonl" --quiet > /dev/null
  echo "check_determinism: trace/metrics (4 threads)"
  DHTLB_THREADS=4 DHTLB_BENCH_DIR="$workdir/obs4" "$SCN_BIN" "$SCN_FILE" \
    --trace="$workdir/obs4/trace.json" \
    --metrics="$workdir/obs4/metrics.jsonl" --quiet > /dev/null
  for artifact in trace.json metrics.jsonl; do
    if ! cmp -s "$workdir/obs1/$artifact" "$workdir/obs4/$artifact"; then
      echo "check_determinism: FAIL — $artifact depends on thread count" >&2
      diff -u "$workdir/obs1/$artifact" "$workdir/obs4/$artifact" >&2 || true
      fail=1
    fi
  done
  if ! cmp -s "$workdir/scn1/BENCH_scenario_flash_crowd.json" \
              "$workdir/obs1/BENCH_scenario_flash_crowd.json"; then
    echo "check_determinism: FAIL — attaching sinks changed the telemetry" >&2
    diff -u "$workdir/scn1/BENCH_scenario_flash_crowd.json" \
            "$workdir/obs1/BENCH_scenario_flash_crowd.json" >&2 || true
    fail=1
  fi
else
  echo "check_determinism: note — $SCN_BIN not built, skipping trace/metrics check"
fi

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_determinism: OK — byte-identical across runs and thread counts"
