#!/usr/bin/env python3
"""Compare BENCH_*.json telemetry against committed baselines.

Every bench binary (bench/) writes a BENCH_<name>.json next to its text
output: flat records {cell, experiment, metric, seed, trials, value,
wall_ms} plus one __calibration__ record timing a fixed splitmix64 loop
on the machine that produced the file.  This script compares a freshly
generated set of files against the baselines committed under
bench/baselines/ and fails when

  * a wall-time regression exceeds --max-regression (default 20%),
    after normalizing both sides by their calibration record so a
    slower CI runner is not mistaken for a slower program, or
  * with --check-values, any deterministic `value` drifts beyond
    --value-tolerance (default: exact) at matching (seed, trials).

Usage:
  compare_bench.py --baseline-dir bench/baselines --current-dir out
  compare_bench.py ... --check-values          # also diff values
  compare_bench.py ... --self-test             # prove the gate trips
Exit codes: 0 ok, 1 regression/drift found, 2 usage or missing files.
"""

import argparse
import json
import math
import os
import sys

CALIBRATION_CELL = "__calibration__"
# Records faster than this are dominated by scheduler noise; the wall
# check skips them (value checks still apply).
MIN_COMPARABLE_MS = 20.0


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')!r}")
    return doc["experiment"], doc["records"]


def split_calibration(records):
    cal = None
    rest = []
    for r in records:
        if r["cell"] == CALIBRATION_CELL:
            cal = r["value"]
        else:
            rest.append(r)
    return cal, rest


def index_by_key(records):
    out = {}
    for r in records:
        out[(r["cell"], r["metric"])] = r
    return out


def compare_file(name, base_path, cur_path, args, failures):
    _, base_records = load_records(base_path)
    _, cur_records = load_records(cur_path)
    base_cal, base_records = split_calibration(base_records)
    cur_cal, cur_records = split_calibration(cur_records)

    # Without calibration on both sides (e.g. deterministic mode), wall
    # times are either zeroed or incomparable across machines; fall back
    # to raw comparison only when both files carry real wall times.
    scale = 1.0
    if base_cal and cur_cal and base_cal > 0 and cur_cal > 0:
        scale = base_cal / cur_cal  # >1 → current machine is faster

    base_idx = index_by_key(base_records)
    cur_idx = index_by_key(cur_records)

    for key, base_r in sorted(base_idx.items()):
        cur_r = cur_idx.get(key)
        if cur_r is None:
            failures.append(f"{name}: record {key} missing from current run")
            continue

        base_wall = base_r["wall_ms"]
        cur_wall = cur_r["wall_ms"] * scale
        if base_wall >= MIN_COMPARABLE_MS and cur_wall > 0:
            ratio = cur_wall / base_wall
            if ratio > 1.0 + args.max_regression:
                failures.append(
                    f"{name}: {key} wall-time regression: "
                    f"{base_wall:.1f}ms -> {cur_wall:.1f}ms normalized "
                    f"({ratio:.2f}x, limit {1.0 + args.max_regression:.2f}x)")

        # Peak-RSS gate: memory is machine-comparable (no calibration
        # scaling).  The field is optional — only records where both
        # sides measured it are gated.
        base_rss = base_r.get("peak_rss_bytes", 0)
        cur_rss = cur_r.get("peak_rss_bytes", 0)
        if base_rss > 0 and cur_rss > 0:
            rss_ratio = cur_rss / base_rss
            if rss_ratio > 1.0 + args.max_rss_regression:
                failures.append(
                    f"{name}: {key} peak-RSS regression: "
                    f"{base_rss} -> {cur_rss} bytes ({rss_ratio:.2f}x, "
                    f"limit {1.0 + args.max_rss_regression:.2f}x)")

        if args.check_values and key[1] != "wall_ms" \
                and not key[1].startswith("speedup"):
            # wall_ms-metric records (grid fan timings) are wall clock
            # re-exposed as a value, and speedup* metrics are ratios of
            # wall clocks; only the normalized wall check above (and the
            # --min-speedup floor below) applies to them.
            same_config = (base_r["seed"] == cur_r["seed"]
                           and base_r["trials"] == cur_r["trials"])
            if same_config:
                bv, cv = base_r["value"], cur_r["value"]
                if not math.isclose(bv, cv, rel_tol=args.value_tolerance,
                                    abs_tol=args.value_tolerance):
                    failures.append(
                        f"{name}: {key} value drift at same seed/trials: "
                        f"{bv!r} -> {cv!r}")

    for key in sorted(set(cur_idx) - set(base_idx)):
        print(f"note: {name}: new record {key} (not in baseline)")


def check_speedup_floor(current_dir, args, failures):
    """Enforces --min-speedup against the current run's speedup records.

    Scans every BENCH_*.json in the current dir for records whose metric
    is --speedup-metric and whose value is positive (deterministic-mode
    runs zero them out, so they never gate).  The best observed speedup
    must reach the floor — this is the thread-scaling gate the nightly
    lane runs on bench/tick_parallel telemetry, guarded by a core-count
    check in the workflow so 2-core runners don't fail a 4x floor.
    """
    best = None
    best_key = None
    for name in sorted(os.listdir(current_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        _, records = load_records(os.path.join(current_dir, name))
        for r in records:
            if r["metric"] != args.speedup_metric or r["value"] <= 0:
                continue
            if best is None or r["value"] > best:
                best = r["value"]
                best_key = f"{name}: ({r['cell']}, {r['metric']})"
    if best is None:
        failures.append(
            f"--min-speedup {args.min_speedup}: no positive "
            f"{args.speedup_metric!r} record found in {current_dir} "
            f"(was the bench run in deterministic mode?)")
        return
    if best < args.min_speedup:
        failures.append(
            f"speedup floor: best {args.speedup_metric} is {best:.2f}x "
            f"({best_key}), below the --min-speedup {args.min_speedup}x "
            f"floor")
    else:
        print(f"speedup floor: {best_key} reached {best:.2f}x "
              f"(floor {args.min_speedup}x)")


def self_test(args):
    """Feeds the comparator a synthetic 2x slowdown; it must trip."""
    base = {
        "schema_version": 1,
        "experiment": "selftest",
        "records": [
            {"cell": CALIBRATION_CELL, "experiment": "selftest",
             "metric": "splitmix64_20m_ms", "seed": 0, "trials": 1,
             "value": 50.0, "wall_ms": 50.0},
            {"cell": "c", "experiment": "selftest", "metric": "m",
             "seed": 0, "trials": 1, "value": 1.0, "wall_ms": 100.0,
             "peak_rss_bytes": 1000000},
        ],
    }
    slow = json.loads(json.dumps(base))
    slow["records"][1]["wall_ms"] = 200.0  # injected 2x slowdown
    drift = json.loads(json.dumps(base))
    drift["records"][1]["value"] = 2.0  # injected value drift
    bloat = json.loads(json.dumps(base))
    bloat["records"][1]["peak_rss_bytes"] = 2000000  # injected 2x RSS

    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        def write(subdir, doc):
            d = os.path.join(tmp, subdir)
            os.makedirs(d, exist_ok=True)
            path = os.path.join(d, "BENCH_selftest.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            return d

        base_dir = write("base", base)

        failures = []
        compare_file("BENCH_selftest.json",
                     os.path.join(base_dir, "BENCH_selftest.json"),
                     os.path.join(write("slow", slow),
                                  "BENCH_selftest.json"),
                     args, failures)
        if not failures:
            print("self-test FAILED: 2x slowdown was not flagged")
            return 1
        print(f"self-test: slowdown correctly flagged: {failures[0]}")

        failures = []
        args.check_values = True
        compare_file("BENCH_selftest.json",
                     os.path.join(base_dir, "BENCH_selftest.json"),
                     os.path.join(write("drift", drift),
                                  "BENCH_selftest.json"),
                     args, failures)
        value_failures = [f for f in failures if "value drift" in f]
        if not value_failures:
            print("self-test FAILED: value drift was not flagged")
            return 1
        print(f"self-test: drift correctly flagged: {value_failures[0]}")

        failures = []
        compare_file("BENCH_selftest.json",
                     os.path.join(base_dir, "BENCH_selftest.json"),
                     os.path.join(write("bloat", bloat),
                                  "BENCH_selftest.json"),
                     args, failures)
        rss_failures = [f for f in failures if "peak-RSS" in f]
        if not rss_failures:
            print("self-test FAILED: 2x RSS growth was not flagged")
            return 1
        print(f"self-test: RSS growth correctly flagged: {rss_failures[0]}")

        failures = []
        compare_file("BENCH_selftest.json",
                     os.path.join(base_dir, "BENCH_selftest.json"),
                     os.path.join(base_dir, "BENCH_selftest.json"),
                     args, failures)
        if failures:
            print(f"self-test FAILED: identical files flagged: {failures}")
            return 1
        print("self-test: identical files pass")

        # Speedup floor: a 1.4x curve must fail a 2x floor and pass 1.2x.
        scaling = json.loads(json.dumps(base))
        scaling["records"].append(
            {"cell": "n=1000/t8", "experiment": "selftest",
             "metric": "speedup_vs_t1", "seed": 0, "trials": 1,
             "value": 1.4, "wall_ms": 0.0})
        scale_dir = write("scaling", scaling)
        args.speedup_metric = "speedup_vs_t1"
        failures = []
        args.min_speedup = 2.0
        check_speedup_floor(scale_dir, args, failures)
        if not [f for f in failures if "speedup floor" in f]:
            print("self-test FAILED: 1.4x curve passed a 2x speedup floor")
            return 1
        print(f"self-test: speedup floor correctly flagged: {failures[0]}")
        failures = []
        args.min_speedup = 1.2
        check_speedup_floor(scale_dir, args, failures)
        if failures:
            print(f"self-test FAILED: 1.4x curve failed a 1.2x floor: "
                  f"{failures}")
            return 1
        print("self-test: speedup floor passes above the bar")
    print("self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional wall-time increase (0.20=20%%)")
    ap.add_argument("--max-rss-regression", type=float, default=0.25,
                    help="allowed fractional peak-RSS increase, for records"
                         " carrying peak_rss_bytes (0.25=25%%)")
    ap.add_argument("--check-values", action="store_true",
                    help="also compare deterministic values at equal "
                         "seed/trials")
    ap.add_argument("--value-tolerance", type=float, default=0.0,
                    help="relative+absolute tolerance for --check-values")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="require the best --speedup-metric record in the "
                         "current dir to reach this ratio (0 = off)")
    ap.add_argument("--speedup-metric", default="speedup_vs_t1",
                    help="metric name scanned by --min-speedup")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on an injected 2x slowdown")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args))

    if not os.path.isdir(args.baseline_dir):
        print(f"error: baseline dir {args.baseline_dir} not found",
              file=sys.stderr)
        sys.exit(2)

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline_dir}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    compared = 0
    for name in baselines:
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.isfile(cur_path):
            print(f"note: {name}: not produced by this run, skipping")
            continue
        compare_file(name, os.path.join(args.baseline_dir, name), cur_path,
                     args, failures)
        compared += 1

    if compared == 0:
        print("error: no baseline file matched a current file",
              file=sys.stderr)
        sys.exit(2)

    if args.min_speedup > 0:
        check_speedup_floor(args.current_dir, args, failures)

    if failures:
        print(f"\ncompare_bench: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"compare_bench: OK ({compared} file(s) compared)")


if __name__ == "__main__":
    main()
