#!/usr/bin/env bash
# Bench smoke gate: runs a reduced-trial subset of the bench binaries,
# collects their BENCH_*.json telemetry, and diffs it against the
# committed baselines in bench/baselines/ via compare_bench.py.
#
# Wall times are normalized by each file's __calibration__ record, so
# the gate catches program slowdowns, not machine differences.  Value
# checks (--check-values) additionally require the deterministic
# numbers to match the baseline bit-for-bit at the same seed/trials.
#
# Usage: scripts/bench_smoke.sh [build_dir] [--check-values]
#        scripts/bench_smoke.sh --update-baseline [build_dir]
# Exit 0 on success, 1 on regression, 2 when binaries are missing.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
UPDATE=0
CHECK_VALUES=""
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE=1 ;;
    --check-values) CHECK_VALUES="--check-values" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# The smoke subset: fast representatives of each binary family.  The
# full set runs locally via `for b in build/bench/*; do ...` when
# needed; CI wants minutes, not hours.
SMOKE_BINARIES=(
  table2_churn
  tableF_future_work
  fig4_6_churn_histograms
  task_stream
  fuzz_throughput
)
# Reduced trial counts keep the smoke run quick while still exercising
# the batched trial fan.
export DHTLB_TRIALS=2
export DHTLB_SEED=1337

for bin in "${SMOKE_BINARIES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "bench_smoke: $BUILD_DIR/bench/$bin not found — build first" >&2
    exit 2
  fi
done

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
export DHTLB_BENCH_DIR="$OUT_DIR"

for bin in "${SMOKE_BINARIES[@]}"; do
  echo "bench_smoke: running $bin (trials=$DHTLB_TRIALS)"
  "$BUILD_DIR/bench/$bin" > "$OUT_DIR/$bin.txt"
done

if [[ "$UPDATE" == 1 ]]; then
  mkdir -p "$REPO_ROOT/bench/baselines"
  cp "$OUT_DIR"/BENCH_*.json "$REPO_ROOT/bench/baselines/"
  echo "bench_smoke: baselines updated in bench/baselines/:"
  ls "$REPO_ROOT/bench/baselines/"
  exit 0
fi

python3 "$REPO_ROOT/scripts/compare_bench.py" \
  --baseline-dir "$REPO_ROOT/bench/baselines" \
  --current-dir "$OUT_DIR" \
  $CHECK_VALUES
