#!/usr/bin/env bash
# Scenario golden gate: replays every canned scenario under scenarios/
# and byte-compares its telemetry JSON against the committed golden in
# scenarios/goldens/.  Any drift — an engine change, an RNG reordering,
# a metric addition — fails loudly with a diff.
#
# Regenerating goldens after an intentional change:
#   for f in scenarios/*.scn; do \
#     DHTLB_BENCH_DIR=scenarios/goldens build/examples/dhtlb_scenario "$f" --quiet; done
#
# Usage: scripts/check_scenarios.sh [build_dir]
# Exit 0 on success, 1 on drift, 2 when the runner is missing.
set -euo pipefail

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/examples/dhtlb_scenario"
REPO="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -x "$BIN" ]]; then
  echo "check_scenarios: $BIN not found — build the tree first" >&2
  exit 2
fi

fail=0
for scn in "$REPO"/scenarios/*.scn; do
  name="$(basename "$scn" .scn)"
  golden="$REPO/scenarios/goldens/BENCH_scenario_${name}.json"
  if [[ ! -f "$golden" ]]; then
    echo "check_scenarios: FAIL — missing golden for $name ($golden)" >&2
    fail=1
    continue
  fi
  if "$BIN" "$scn" --quiet --check "$golden"; then
    echo "check_scenarios: $name OK"
  else
    echo "check_scenarios: FAIL — $name drifted from its golden" >&2
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_scenarios: OK — every canned scenario replays byte-identically"
